// Command served is the online TE controller daemon: it serves routing
// decisions for one or more topologies over the HTTP/JSON API in
// internal/serve, with hot-swappable model checkpoints, streaming demand
// ingest, failure rerouting, churn limiting and drift-triggered
// background retraining.
//
// For each named topology the daemon builds the evaluation environment
// (topology, candidate paths, a synthetic bootstrap trace), trains a
// bootstrap FIGRET checkpoint on the trace's training split, and starts
// a per-topology controller. Checkpoints trained elsewhere are swapped
// in at runtime:
//
//	served -topos pod-db,geant -addr :8080
//	curl -X POST :8080/v1/topologies/pod-db/snapshots -d '{"demand": [...]}'
//	curl :8080/v1/topologies/pod-db/routing
//	curl -X POST :8080/v1/topologies/pod-db/checkpoints --data-binary @model.json
//	curl -X POST :8080/v1/topologies/pod-db/checkpoints/rollback
//	curl :8080/v1/metrics
//
// With -bootstrap=false the daemon starts without models: routing serves
// the uniform fallback until a checkpoint is uploaded.
//
// With -drive the binary becomes a load generator instead of a daemon:
// it pipelines demand snapshots over the upgraded binary wire protocol
// against an already-running served instance and reports sustained
// decisions/sec, RTT quantiles and the delta-encoding mix:
//
//	served -topos geant -drive http://127.0.0.1:8080 -driven 20000
//
// Startup cost is dominated by candidate-path precomputation (Yen's
// algorithm over all SD pairs of every served topology). It fans out
// across all CPUs by default (-pathworkers pins the pool), and -pathcache
// names an on-disk path cache shared with the figret and experiments
// CLIs: with a warm cache the daemon skips the solve entirely and comes
// up in seconds even for large WANs:
//
//	served -topos cogentco,uscarrier -scale full -pathcache /var/cache/figret-paths
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/serve"
)

func main() {
	var (
		topos     = flag.String("topos", "pod-db", "comma-separated topologies to serve (geant uscarrier cogentco pfabric pod-db pod-web tor-db tor-web)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		scale     = flag.String("scale", "fast", "fast|full topology sizing")
		bootstrap = flag.Bool("bootstrap", true, "train a bootstrap checkpoint per topology at startup")
		T         = flag.Int("T", 200, "bootstrap trace length")
		H         = flag.Int("H", 12, "history window of bootstrap models")
		gamma     = flag.Float64("gamma", 1, "robustness loss weight of bootstrap models (0 = DOTE)")
		epochs    = flag.Int("epochs", 6, "bootstrap training epochs")
		batch     = flag.Int("batch", 16, "bootstrap training minibatch size")
		seed      = flag.Int64("seed", 1, "random seed")
		history   = flag.Int("history", 256, "sliding demand-window capacity per topology")
		churn     = flag.Float64("churn", 0, "per-interval L1 churn limit (0 = unlimited)")
		drift     = flag.Bool("drift", true, "enable drift-triggered background retraining")

		pathCache   = flag.String("pathcache", "", "directory of the on-disk candidate-path cache; a warm cache brings multi-topology daemons up in seconds instead of re-running Yen per process")
		pathWorkers = flag.Int("pathworkers", 0, "candidate-path precomputation worker pool size (0 = all CPUs); the path set is bitwise identical for any value")

		trainWorkers = flag.Int("trainworkers", 0, "worker pool size for bootstrap and drift retraining (0 = all CPUs); trained weights are bitwise identical for any value")

		drive      = flag.String("drive", "", "load-generator mode: instead of serving, drive the daemon at this base URL (e.g. http://127.0.0.1:8080) over the pipelined binary wire protocol; the first -topos entry names the target topology")
		driveN     = flag.Int("driven", 0, "load-generator request count (0 = one pass over the topology's trace)")
		driveAsync = flag.Bool("driveasync", false, "load-generate asynchronous ingests (acks) instead of per-request decisions")
	)
	flag.Parse()

	sc := experiments.ScaleFast
	if *scale == "full" {
		sc = experiments.ScaleFull
	}

	if *drive != "" {
		topo := strings.TrimSpace(strings.Split(*topos, ",")[0])
		if err := runDrive(*drive, topo, sc, *T, *seed, *driveN, *driveAsync, *pathCache, *pathWorkers); err != nil {
			log.Fatalf("served: drive: %v", err)
		}
		return
	}

	reg := serve.NewRegistry()
	srv := serve.NewServer(reg)
	for _, topo := range strings.Split(*topos, ",") {
		topo = strings.TrimSpace(topo)
		if topo == "" {
			continue
		}
		if err := addTopology(srv, reg, topo, sc, *bootstrap, *T, *H, *gamma, *epochs, *batch, *seed, *history, *churn, *drift, *pathCache, *pathWorkers, *trainWorkers); err != nil {
			log.Fatalf("served: %s: %v", topo, err)
		}
	}

	log.Printf("served: listening on %s (topologies: %s)", *addr, *topos)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("served: %v", err)
	}
}

// runDrive is the load-generator mode: it rebuilds the topology's
// environment (path set + synthetic trace, no training), dials the
// running daemon's binary stream and pipelines demand snapshots at the
// adaptive window's sustainable rate, reporting throughput, RTT
// quantiles and the delta-encoding mix.
func runDrive(baseURL, topo string, sc experiments.Scale, T int, seed int64, n int, async bool,
	pathCache string, pathWorkers int) error {
	env, err := experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: pathCache, PathWorkers: pathWorkers,
	})
	if err != nil {
		return err
	}
	res, err := serve.LoadGen(baseURL, topo, env.PS, env.Test, serve.LoadOptions{Requests: n, Async: async})
	if err != nil {
		return err
	}
	s := &res.Stream
	log.Printf("drive: %s: %d requests in %s: %.0f decisions/s (%.0f requests/s)",
		topo, s.Requests, s.Elapsed.Round(time.Millisecond), res.DecisionsPerSec, res.RequestsPerSec)
	log.Printf("drive: rtt mean %.0fµs p50 %.0fµs p99 %.0fµs; window %d..%d (final %d, %d backoffs)",
		s.MeanRTTMicros, s.P50RTTMicros, s.P99RTTMicros, s.MinWindow, s.MaxWindow, s.FinalWindow, s.CongestionEvents)
	log.Printf("drive: %d delta / %d full decisions, %d resyncs, %d redials; %d B sent, %d B received",
		res.Bin.Deltas, res.Bin.Fulls, res.Bin.Resyncs, res.Bin.Redials, s.BytesSent, s.BytesReceived)
	return nil
}

func addTopology(srv *serve.Server, reg *serve.Registry, topo string, sc experiments.Scale,
	bootstrap bool, T, H int, gamma float64, epochs, batch int, seed int64,
	history int, churn float64, drift bool, pathCache string, pathWorkers, trainWorkers int) error {
	env, err := experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: pathCache, PathWorkers: pathWorkers,
	})
	if err != nil {
		return err
	}
	if err := reg.AddTopology(topo, env.PS); err != nil {
		return err
	}
	opt := serve.ControllerOptions{HistoryCap: history, MaxChurn: churn}
	if drift {
		// Shadow evaluations normalize against the environment's memoized
		// omniscient oracle; solves run in the background and are shared
		// across retrains.
		opt.Drift = &serve.DriftOptions{
			Oracle:       eval.NewOracle(env.PS, baselines.AutoSolve(env.PS), nil),
			TrainWorkers: trainWorkers,
		}
	}
	if _, err := srv.Add(topo, opt); err != nil {
		return err
	}
	if !bootstrap {
		log.Printf("served: %s ready (no checkpoint; uniform fallback until upload)", topo)
		return nil
	}
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: trainWorkers,
	})
	stats, err := m.Train(env.Train)
	if err != nil {
		return err
	}
	ck, err := reg.Install(topo, m, "bootstrap")
	if err != nil {
		return err
	}
	log.Printf("served: %s ready (checkpoint v%d, %d params, train MLU %.4f -> %.4f)",
		topo, ck.Version, m.Net.NumParams(), stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1])
	return nil
}
