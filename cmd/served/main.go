// Command served is the online TE controller daemon: it serves routing
// decisions for one or more topologies over the HTTP/JSON API in
// internal/serve, with hot-swappable model checkpoints, streaming demand
// ingest, failure rerouting, churn limiting and drift-triggered
// background retraining.
//
// For each named topology the daemon builds the evaluation environment
// (topology, candidate paths, a synthetic bootstrap trace), trains a
// bootstrap FIGRET checkpoint on the trace's training split, and starts
// a per-topology controller. Checkpoints trained elsewhere are swapped
// in at runtime:
//
//	served -topos pod-db,geant -addr :8080
//	curl -X POST :8080/v1/topologies/pod-db/snapshots -d '{"demand": [...]}'
//	curl :8080/v1/topologies/pod-db/routing
//	curl -X POST :8080/v1/topologies/pod-db/checkpoints --data-binary @model.json
//	curl -X POST :8080/v1/topologies/pod-db/checkpoints/rollback
//	curl :8080/v1/metrics
//
// With -bootstrap=false the daemon starts without models: routing serves
// the uniform fallback until a checkpoint is uploaded.
//
// Startup cost is dominated by candidate-path precomputation (Yen's
// algorithm over all SD pairs of every served topology). It fans out
// across all CPUs by default (-pathworkers pins the pool), and -pathcache
// names an on-disk path cache shared with the figret and experiments
// CLIs: with a warm cache the daemon skips the solve entirely and comes
// up in seconds even for large WANs:
//
//	served -topos cogentco,uscarrier -scale full -pathcache /var/cache/figret-paths
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/experiments"
	"figret/internal/figret"
	"figret/internal/serve"
)

func main() {
	var (
		topos     = flag.String("topos", "pod-db", "comma-separated topologies to serve (geant uscarrier cogentco pfabric pod-db pod-web tor-db tor-web)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		scale     = flag.String("scale", "fast", "fast|full topology sizing")
		bootstrap = flag.Bool("bootstrap", true, "train a bootstrap checkpoint per topology at startup")
		T         = flag.Int("T", 200, "bootstrap trace length")
		H         = flag.Int("H", 12, "history window of bootstrap models")
		gamma     = flag.Float64("gamma", 1, "robustness loss weight of bootstrap models (0 = DOTE)")
		epochs    = flag.Int("epochs", 6, "bootstrap training epochs")
		batch     = flag.Int("batch", 16, "bootstrap training minibatch size")
		seed      = flag.Int64("seed", 1, "random seed")
		history   = flag.Int("history", 256, "sliding demand-window capacity per topology")
		churn     = flag.Float64("churn", 0, "per-interval L1 churn limit (0 = unlimited)")
		drift     = flag.Bool("drift", true, "enable drift-triggered background retraining")

		pathCache   = flag.String("pathcache", "", "directory of the on-disk candidate-path cache; a warm cache brings multi-topology daemons up in seconds instead of re-running Yen per process")
		pathWorkers = flag.Int("pathworkers", 0, "candidate-path precomputation worker pool size (0 = all CPUs); the path set is bitwise identical for any value")

		trainWorkers = flag.Int("trainworkers", 0, "worker pool size for bootstrap and drift retraining (0 = all CPUs); trained weights are bitwise identical for any value")
	)
	flag.Parse()

	sc := experiments.ScaleFast
	if *scale == "full" {
		sc = experiments.ScaleFull
	}

	reg := serve.NewRegistry()
	srv := serve.NewServer(reg)
	for _, topo := range strings.Split(*topos, ",") {
		topo = strings.TrimSpace(topo)
		if topo == "" {
			continue
		}
		if err := addTopology(srv, reg, topo, sc, *bootstrap, *T, *H, *gamma, *epochs, *batch, *seed, *history, *churn, *drift, *pathCache, *pathWorkers, *trainWorkers); err != nil {
			log.Fatalf("served: %s: %v", topo, err)
		}
	}

	log.Printf("served: listening on %s (topologies: %s)", *addr, *topos)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("served: %v", err)
	}
}

func addTopology(srv *serve.Server, reg *serve.Registry, topo string, sc experiments.Scale,
	bootstrap bool, T, H int, gamma float64, epochs, batch int, seed int64,
	history int, churn float64, drift bool, pathCache string, pathWorkers, trainWorkers int) error {
	env, err := experiments.NewEnv(topo, sc, experiments.EnvOptions{
		T: T, Seed: seed, PathCache: pathCache, PathWorkers: pathWorkers,
	})
	if err != nil {
		return err
	}
	if err := reg.AddTopology(topo, env.PS); err != nil {
		return err
	}
	opt := serve.ControllerOptions{HistoryCap: history, MaxChurn: churn}
	if drift {
		// Shadow evaluations normalize against the environment's memoized
		// omniscient oracle; solves run in the background and are shared
		// across retrains.
		opt.Drift = &serve.DriftOptions{
			Oracle:       eval.NewOracle(env.PS, baselines.AutoSolve(env.PS), nil),
			TrainWorkers: trainWorkers,
		}
	}
	if _, err := srv.Add(topo, opt); err != nil {
		return err
	}
	if !bootstrap {
		log.Printf("served: %s ready (no checkpoint; uniform fallback until upload)", topo)
		return nil
	}
	m := figret.New(env.PS, figret.Config{
		H: H, Gamma: gamma, Epochs: epochs, Seed: seed, BatchSize: batch,
		TrainWorkers: trainWorkers,
	})
	stats, err := m.Train(env.Train)
	if err != nil {
		return err
	}
	ck, err := reg.Install(topo, m, "bootstrap")
	if err != nil {
		return err
	}
	log.Printf("served: %s ready (checkpoint v%d, %d params, train MLU %.4f -> %.4f)",
		topo, ck.Version, m.Net.NumParams(), stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1])
	return nil
}
