// Command figretvet runs the project's static-analysis suite
// (internal/analysis) over the module: detrange, detsource, nilrecv,
// viewsafe and errwire — the machine-checked versions of the
// determinism, nil-safety, view-aliasing and wire-error contracts
// documented in DESIGN.md §13.
//
// Usage:
//
//	figretvet ./...
//	figretvet ./internal/wire ./internal/serve
//
// Exit status is non-zero when any diagnostic is reported. Suppress a
// justified finding with a directive on (or directly above) the flagged
// line:
//
//	//figret:allow(<check>) <reason>
//
// Unexplained, unknown or unused directives are themselves errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"figret/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: figretvet [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project's invariant analyzers (DESIGN.md §13):\n")
		for _, a := range analysis.DefaultSuite().Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "figretvet: %v\n", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figretvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figretvet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.DefaultSuite().Run(pkgs)
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "figretvet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
