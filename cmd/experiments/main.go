// Command experiments regenerates the paper's tables and figures on the
// synthetic substrates of this repository and prints paper-shaped text
// output. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results.
//
// Usage:
//
//	experiments -exp fig5 -topo pod-db
//	experiments -exp all -scale fast
//	experiments -exp table2 -topo geant -scale full
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"figret/internal/baselines"
	"figret/internal/experiments"
	"figret/internal/graph"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig1 fig2 fig4 fig5 fig6 fig7 fig8 fig18 fig19 table2 table3 table4 table5 appc all")
		topo    = flag.String("topo", "", "topology (default: per-experiment paper choice)")
		scale   = flag.String("scale", "fast", "fast|full")
		T       = flag.Int("T", 0, "trace length (0 = scale default)")
		H       = flag.Int("H", 0, "history window (0 = default 12)")
		gamma   = flag.Float64("gamma", 0, "FIGRET robustness weight (0 = default)")
		epochs  = flag.Int("epochs", 0, "training epochs (0 = scale default)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", runtime.NumCPU(), "evaluation worker pool size; results are bitwise identical for any worker count")

		pathCache   = flag.String("pathcache", "", "directory of the on-disk candidate-path cache (shared across figret/experiments/served runs; empty = recompute every run)")
		pathWorkers = flag.Int("pathworkers", 0, "candidate-path precomputation worker pool size (0 = all CPUs); the path set is bitwise identical for any value")
	)
	flag.Parse()

	sc := experiments.ScaleFast
	if *scale == "full" {
		sc = experiments.ScaleFull
	}
	r := runner{scale: sc, T: *T, H: *H, gamma: *gamma, epochs: *epochs, seed: *seed, topo: *topo,
		workers: *workers, pathCache: *pathCache, pathWorkers: *pathWorkers}
	if err := r.run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type runner struct {
	scale       experiments.Scale
	T           int
	H           int
	gamma       float64
	epochs      int
	seed        int64
	topo        string
	workers     int
	pathCache   string
	pathWorkers int
}

func (r runner) env(defaultTopo string) (*experiments.Env, error) {
	topo := r.topo
	if topo == "" {
		topo = defaultTopo
	}
	env, err := experiments.NewEnv(topo, r.scale, experiments.EnvOptions{
		T: r.T, Seed: r.seed, PathCache: r.pathCache, PathWorkers: r.pathWorkers,
	})
	if err != nil {
		return nil, err
	}
	env.Workers = r.workers
	return env, nil
}

func (r runner) run(exp string) error {
	switch exp {
	case "all":
		for _, e := range []string{"fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig16", "fig19", "fig20", "mluproxy", "table2", "table3",
			"table4", "table5", "appc"} {
			fmt.Printf("==== %s ====\n", e)
			if err := r.run(e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Println()
		}
		return nil

	case "fig1":
		for _, topo := range r.topos(graph.TopoGEANT, graph.TopoPoDDB, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			if env.PS.Pairs.Count() > 200 {
				env.UseGradSolver(0)
			}
			res, err := experiments.Hedging(env, 40)
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "fig2":
		for _, topo := range r.topos(graph.TopoGEANT, graph.TopoPoDDB, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			fmt.Print(experiments.VarianceHeterogeneity(env))
		}
		return nil

	case "fig4", "fig18":
		h := 12
		if exp == "fig18" {
			h = 64
		}
		if r.H != 0 {
			h = r.H
		}
		var envs []*experiments.Env
		for _, topo := range graph.AllTopologies() {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			envs = append(envs, env)
		}
		fmt.Print(experiments.CosineSimilarity(envs, h))
		return nil

	case "fig5":
		for _, topo := range r.topos(graph.TopoGEANT, graph.TopoPFabric, graph.TopoPoDDB,
			graph.TopoPoDWEB, graph.TopoToRDB, graph.TopoToRWEB, graph.TopoCogentco, graph.TopoUsCarrier) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			opt := experiments.QualityOptions{H: r.H, Gamma: r.gamma, Epochs: r.epochs, MaxEval: 30}
			small := env.PS.Pairs.Count()+env.G.NumEdges() <= 200
			opt.WithOblivious = small
			if !small {
				env.UseGradSolver(0)
			}
			if env.Topo == graph.TopoToRDB || env.Topo == graph.TopoToRWEB {
				if opt.Gamma == 0 {
					opt.Gamma = 2
				}
			}
			res, err := experiments.TEQuality(env, opt)
			if err != nil {
				return err
			}
			fmt.Print(res)
			fmt.Println()
		}
		return nil

	case "fig6":
		for _, topo := range r.topos(graph.TopoGEANT, graph.TopoPFabric) {
			env, err := experiments.NewEnv(topo, r.scale, experiments.EnvOptions{
				T: r.T, Seed: r.seed, Selector: baselines.RaeckeSelector(0),
				// The selector name pins the cache key to the default
				// inflation; bump it if the inflation argument changes.
				SelectorName: "raecke-8",
				PathCache:    r.pathCache, PathWorkers: r.pathWorkers})
			if err != nil {
				return err
			}
			env.Workers = r.workers
			if env.PS.Pairs.Count()+env.G.NumEdges() > 200 {
				env.UseGradSolver(0)
			}
			res, err := experiments.TEQuality(env, experiments.QualityOptions{
				H: r.H, Gamma: r.gamma, Epochs: r.epochs, MaxEval: 30,
				WithOblivious: env.PS.Pairs.Count()+env.G.NumEdges() <= 200})
			if err != nil {
				return err
			}
			fmt.Printf("(Räcke-style paths) %s", res)
			fmt.Println()
		}
		return nil

	case "fig7":
		for _, topo := range r.topos(graph.TopoGEANT, graph.TopoPFabric, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			res, err := experiments.Failures(env, experiments.FailureOptions{
				H: r.H, Gamma: r.gamma, Epochs: r.epochs})
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "fig8":
		for _, topo := range r.topos(graph.TopoPoDDB, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			if env.PS.Pairs.Count() > 200 {
				env.UseGradSolver(0)
			}
			g := r.gamma
			if g == 0 {
				g = 8
			}
			res, err := experiments.SensitivityAnalysis(env, r.H, g, r.epochs, 20)
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "fig16", "fig17":
		for _, topo := range r.topos(graph.TopoPoDDB, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			res, err := experiments.VisualizeDrift(env, 100)
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "fig19":
		res, err := experiments.PredictionMismatch()
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil

	case "fig20":
		env, err := r.env(graph.TopoToRDB)
		if err != nil {
			return err
		}
		res, err := experiments.DOTEFailureCase(env, r.H, r.gamma, r.epochs)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil

	case "mluproxy":
		env, err := r.env(graph.TopoPoDDB)
		if err != nil {
			return err
		}
		res, err := experiments.MLUProxy(env, 30)
		if err != nil {
			return err
		}
		fmt.Print(res)
		return nil

	case "table2":
		for _, topo := range r.topos(graph.TopoGEANT, graph.TopoToRDB, graph.TopoToRWEB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			res, err := experiments.Timing(env, experiments.TimingOptions{H: r.H, Epochs: r.epochs})
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "table3", "table5":
		worst := exp == "table5"
		for _, topo := range r.topos(graph.TopoPoDDB, graph.TopoPFabric, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			res, err := experiments.Perturbation(env, r.H, r.gamma, r.epochs, nil, worst)
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "table4":
		for _, topo := range r.topos(graph.TopoPoDDB, graph.TopoPFabric, graph.TopoToRDB) {
			env, err := r.env(topo)
			if err != nil {
				return err
			}
			res, err := experiments.Drift(env, r.H, r.gamma, r.epochs)
			if err != nil {
				return err
			}
			fmt.Print(res)
		}
		return nil

	case "appc":
		env, err := r.env(graph.TopoPoDDB)
		if err != nil {
			return err
		}
		for _, kind := range []string{"linear", "piecewise"} {
			res, err := experiments.HeuristicF(env, kind, 0)
			if err != nil {
				return err
			}
			fmt.Print(res)
			fmt.Println()
		}
		return nil

	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// topos returns the default topology list, or the single -topo override.
func (r runner) topos(defaults ...string) []string {
	if r.topo != "" {
		return []string{r.topo}
	}
	return defaults
}
