// Command scenarios drives the declarative scenario-matrix subsystem
// (internal/scenario): it runs suites of JSON scenario specs, blesses
// their metrics as goldens, and diffs fresh runs against the blessed
// goldens with tolerance gating — the regression gate CI's
// scenario-matrix job is built on.
//
// Usage:
//
//	scenarios run   [-suite dir] [-shard i/n] [-json] [flags]
//	scenarios bless [-suite dir] [-golden dir] [-shard i/n] [flags]
//	scenarios diff  [-suite dir] [-golden dir] [-shard i/n] [-json] [flags]
//
// run prints fresh metrics; bless writes them as goldens; diff fails
// (exit 1) when any scenario regressed past tolerance or lacks a golden.
// -shard i/n (1-based) runs the canonical i-th slice of the name-sorted
// suite: the union of all shards is bitwise the single-process result,
// so CI can fan the matrix out without changing what is measured.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"figret/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run", "bless", "diff":
		err = execute(cmd, args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenarios: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scenarios run   [-suite dir] [-shard i/n] [-json] [-workers n] [-parallel n] [-trainworkers n] [-pathcache dir] [-tracecache dir] [-wire]
  scenarios bless [-suite dir] [-golden dir] [-shard i/n] [-workers n] [-parallel n] [-trainworkers n] [-pathcache dir] [-tracecache dir] [-wire]
  scenarios diff  [-suite dir] [-golden dir] [-shard i/n] [-json] [-workers n] [-parallel n] [-trainworkers n] [-pathcache dir] [-tracecache dir] [-wire]`)
}

func execute(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		suite        = fs.String("suite", "scenarios/suite", "directory of scenario spec *.json files")
		golden       = fs.String("golden", "scenarios/golden", "directory of blessed golden metrics (bless/diff)")
		shardStr     = fs.String("shard", "", "run slice i/n (1-based) of the name-sorted suite; empty = all")
		jsonOut      = fs.Bool("json", false, "emit machine-readable JSON instead of text")
		workers      = fs.Int("workers", runtime.NumCPU(), "per-scenario evaluation worker pool size; metrics are bitwise identical for any value")
		parallel     = fs.Int("parallel", 1, "scenarios run concurrently; metrics are bitwise identical for any value")
		pathCache    = fs.String("pathcache", "", "directory of the on-disk candidate-path cache shared with figret/experiments/served (empty = recompute)")
		traceCache   = fs.String("tracecache", "", "directory of the on-disk columnar trace store; traces are generated once, then memory-mapped (empty = regenerate in RAM); metrics are bitwise identical either way")
		trainWorkers = fs.Int("trainworkers", 0, "substrate-model training worker pool size (0 = all CPUs); metrics are bitwise identical for any value")
		wireReplay   = fs.Bool("wire", false, "replay closed-loop scenarios over the binary wire protocol instead of JSON HTTP; metrics are bitwise identical for either transport")
		quiet        = fs.Bool("q", false, "suppress per-scenario progress lines")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	allSpecs, err := scenario.LoadSuite(*suite)
	if err != nil {
		return err
	}
	shard, err := scenario.ParseShard(*shardStr)
	if err != nil {
		return err
	}
	specs := shard.Select(allSpecs)
	if len(specs) == 0 {
		return fmt.Errorf("shard %s selected no scenarios of %s", *shardStr, *suite)
	}

	opt := scenario.Options{Workers: *workers, ScenarioWorkers: *parallel, PathCache: *pathCache, TraceCache: *traceCache, TrainWorkers: *trainWorkers, Wire: *wireReplay}
	if !*quiet && !*jsonOut {
		opt.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	metrics, err := scenario.NewRunner(opt).Run(specs)
	if err != nil {
		return err
	}

	switch cmd {
	case "run":
		return emit(metrics, *jsonOut)
	case "bless":
		st, err := scenario.NewStore(*golden)
		if err != nil {
			return err
		}
		for _, m := range metrics {
			if err := st.Save(m); err != nil {
				return err
			}
		}
		fmt.Printf("blessed %d scenario golden(s) into %s\n", len(metrics), *golden)
		return nil
	case "diff":
		return diff(metrics, *golden, specs, allSpecs, *jsonOut)
	}
	return nil
}

func emit(metrics []*scenario.Metrics, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(metrics)
	}
	fmt.Print(scenario.Render(metrics))
	return nil
}

// diffReport is the machine-readable diff output.
type diffReport struct {
	Scenario     string   `json:"scenario"`
	OK           bool     `json:"ok"`
	Regressions  []string `json:"regressions,omitempty"`
	Improvements []string `json:"improvements,omitempty"`
}

func diff(metrics []*scenario.Metrics, goldenDir string, specs, allSpecs []*scenario.Spec, asJSON bool) error {
	st, err := scenario.NewStore(goldenDir)
	if err != nil {
		return err
	}
	tolerances := make(map[string]float64, len(specs))
	for _, sp := range specs {
		tolerances[sp.Name] = sp.Tolerance
	}
	failed := 0
	reports := make([]diffReport, 0, len(metrics))

	// Orphaned goldens: a golden whose spec left the suite means the gate
	// silently shrank — deleting a scenario must be as deliberate as
	// regressing one. Checked against the full (unsharded) suite so every
	// shard agrees.
	inSuite := make(map[string]bool, len(allSpecs))
	for _, sp := range allSpecs {
		inSuite[sp.Name] = true
	}
	blessed, err := st.List()
	if err != nil {
		return err
	}
	for _, name := range blessed {
		if !inSuite[name] {
			failed++
			reports = append(reports, diffReport{Scenario: name, Regressions: []string{
				fmt.Sprintf("golden %s has no spec in the suite (scenario deleted? remove the golden to accept)", name),
			}})
		}
	}
	for _, m := range metrics {
		g, err := st.Load(m.Scenario)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				err = fmt.Errorf("no golden for %s (run `scenarios bless` to create it)", m.Scenario)
			}
			failed++
			reports = append(reports, diffReport{Scenario: m.Scenario, Regressions: []string{err.Error()}})
			continue
		}
		d := scenario.Compare(g, m, tolerances[m.Scenario])
		if !d.OK() {
			failed++
		}
		reports = append(reports, diffReport{
			Scenario: m.Scenario, OK: d.OK(),
			Regressions: d.Regressions, Improvements: d.Improvements,
		})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, r := range reports {
			for _, reg := range r.Regressions {
				fmt.Printf("REGRESSION %s: %s\n", r.Scenario, reg)
			}
			for _, im := range r.Improvements {
				fmt.Printf("improved   %s: %s\n", r.Scenario, im)
			}
		}
		fmt.Printf("%d/%d scenario(s) clean\n", len(reports)-failed, len(reports))
	}
	if failed > 0 {
		return fmt.Errorf("%d scenario(s) regressed or lack goldens", failed)
	}
	return nil
}
