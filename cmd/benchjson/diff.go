package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// tolerances are the per-metric multiplicative guard bands of diff mode.
// ns/op and throughput bands are wide on purpose: CI runners and the
// machines baselines are blessed on differ in clock, cache and load, so
// the timing gate exists to catch order-of-magnitude regressions (an
// accidental O(n²), a lost fast path) rather than percent-level drift.
// Allocation counts are deterministic for a fixed build, so their band
// is tight and catches a single added allocation in a zero-alloc path.
type tolerances struct {
	// ns fails when current ns/op exceeds baseline × ns.
	ns float64
	// bytes fails when current B/op exceeds baseline × bytes.
	bytes float64
	// allocs fails when current allocs/op exceeds baseline × allocs.
	allocs float64
	// rate fails when a higher-is-better "/s" metric falls below
	// baseline ÷ rate.
	rate float64
}

// diffRow is one metric comparison in the report table.
type diffRow struct {
	bench  string
	metric string
	base   float64
	cur    float64
	status string // ok | improved | REGRESSION | missing | new
}

// key addresses a benchmark across reports. Procs is part of the
// identity: the same benchmark at different GOMAXPROCS is a different
// measurement.
func key(r *Result) string {
	return fmt.Sprintf("%s %s-%d", r.Package, r.Name, r.Procs)
}

// diffResults compares current against baseline metric by metric. Every
// baseline benchmark must still exist (a vanished benchmark is a
// regression — deleting the measurement must not pass the gate);
// benchmarks only in current are notes, to be picked up at the next
// baseline bless.
func diffResults(base, cur []*Result, tol tolerances) (rows []diffRow, regressions []string) {
	curBy := make(map[string]*Result, len(cur))
	for _, r := range cur {
		curBy[key(r)] = r
	}
	reg := func(row diffRow) {
		rows = append(rows, row)
		regressions = append(regressions,
			fmt.Sprintf("%s %s: baseline %s, current %s", row.bench, row.metric, num(row.base), num(row.cur)))
	}
	// lowerIsBetter gates one metric where smaller values win.
	lowerIsBetter := func(bench, metric string, b, c, factor float64) {
		row := diffRow{bench: bench, metric: metric, base: b, cur: c}
		switch {
		case c > b*factor:
			row.status = "REGRESSION"
			reg(row)
			return
		case b > 0 && c < b/factor:
			row.status = "improved"
		default:
			row.status = "ok"
		}
		rows = append(rows, row)
	}
	for _, b := range base {
		name := key(b)
		c, ok := curBy[name]
		if !ok {
			reg(diffRow{bench: name, metric: "(all)", base: b.NsPerOp, status: "missing"})
			continue
		}
		delete(curBy, name)
		lowerIsBetter(name, "ns/op", b.NsPerOp, c.NsPerOp, tol.ns)
		if b.AllocsPerOp != nil {
			if c.AllocsPerOp == nil {
				reg(diffRow{bench: name, metric: "allocs/op", base: float64(*b.AllocsPerOp), status: "missing"})
			} else {
				lowerIsBetter(name, "allocs/op", float64(*b.AllocsPerOp), float64(*c.AllocsPerOp), tol.allocs)
			}
		}
		if b.BytesPerOp != nil && c.BytesPerOp != nil {
			lowerIsBetter(name, "B/op", float64(*b.BytesPerOp), float64(*c.BytesPerOp), tol.bytes)
		}
		for _, unit := range extraUnits(b.Extra) {
			bv := b.Extra[unit]
			cv, has := c.Extra[unit]
			if !strings.HasSuffix(unit, "/s") {
				continue // only throughput extras are gated
			}
			row := diffRow{bench: name, metric: unit, base: bv, cur: cv}
			switch {
			case !has || cv < bv/tol.rate:
				row.status = "REGRESSION"
				reg(row)
				continue
			case cv > bv*tol.rate:
				row.status = "improved"
			default:
				row.status = "ok"
			}
			rows = append(rows, row)
		}
	}
	// Benchmarks without a baseline: informational, never a failure.
	for _, r := range cur {
		if _, still := curBy[key(r)]; still {
			rows = append(rows, diffRow{bench: key(r), metric: "ns/op", cur: r.NsPerOp, status: "new"})
		}
	}
	return rows, regressions
}

// extraUnits returns a map's units in sorted order, so report rows are
// deterministic.
func extraUnits(m map[string]float64) []string {
	if len(m) == 0 {
		return nil
	}
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// num renders a metric value compactly.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// markdownTable renders the comparison as a GitHub-flavored markdown
// table (the $GITHUB_STEP_SUMMARY format).
func markdownTable(rows []diffRow) string {
	var sb strings.Builder
	sb.WriteString("### Benchmark comparison\n\n")
	sb.WriteString("| benchmark | metric | baseline | current | ratio | status |\n")
	sb.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, r := range rows {
		ratio := "–"
		if r.base > 0 && r.cur > 0 {
			ratio = strconv.FormatFloat(r.cur/r.base, 'f', 2, 64) + "×"
		}
		baseS, curS := num(r.base), num(r.cur)
		if r.status == "new" {
			baseS = "–"
		}
		if r.status == "missing" {
			curS = "–"
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n", r.bench, r.metric, baseS, curS, ratio, r.status)
	}
	return sb.String()
}

// loadReport reads a benchjson report file (the convert-mode output).
func loadReport(path string) ([]*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []*Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: empty benchmark report", path)
	}
	return rs, nil
}

// runDiff is the `benchjson diff` entrypoint: compare a current report
// against the blessed baseline, print the markdown table, optionally
// append it to a summary file, and exit non-zero on any regression.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		baseline = fs.String("baseline", "BENCH_baseline.json", "blessed baseline report (benchjson convert output)")
		current  = fs.String("current", "", "report to gate against the baseline")
		summary  = fs.String("summary", "", "append the markdown table to this file (e.g. $GITHUB_STEP_SUMMARY); empty skips")
		nsTol    = fs.Float64("nstol", 4, "ns/op guard band: fail beyond baseline×nstol (wide: baselines cross machines)")
		byTol    = fs.Float64("bytestol", 1.5, "B/op guard band: fail beyond baseline×bytestol")
		alTol    = fs.Float64("allocstol", 1.25, "allocs/op guard band: fail beyond baseline×allocstol (allocation counts are deterministic)")
		rateTol  = fs.Float64("ratetol", 4, "higher-is-better \"/s\" guard band: fail below baseline÷ratetol")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchjson diff: -current is required")
		return 2
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson diff:", err)
		return 1
	}
	cur, err := loadReport(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson diff:", err)
		return 1
	}
	rows, regressions := diffResults(base, cur, tolerances{ns: *nsTol, bytes: *byTol, allocs: *alTol, rate: *rateTol})
	table := markdownTable(rows)
	fmt.Print(table)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson diff:", err)
			return 1
		}
		if _, err := f.WriteString(table); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson diff:", err)
			return 1
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson diff: %d regression(s) beyond tolerance:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		return 1
	}
	return 0
}
