// Command benchjson converts a `go test -json -bench` event stream
// (stdin) into a compact machine-readable benchmark report (stdout), so
// CI can record the performance trajectory per commit as an artifact
// instead of burying ns/op in build logs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem -json ./... | benchjson > BENCH_scenarios.json
//
// The report is a JSON array sorted by (package, name):
//
//	[{"name":"BenchmarkTrainStep/batch=32","package":"figret",
//	  "procs":8,"iterations":100,"nsPerOp":12345.6,
//	  "bytesPerOp":128,"allocsPerOp":3}, ...]
//
// Benchmarks that report neither B/op nor allocs/op (no -benchmem) omit
// those fields. Custom b.ReportMetric measurements (e.g. the serving
// benchmark's "decisions/s") land in an "extra" map keyed by unit.
// benchjson exits non-zero when the stream contains a
// failing test action or no benchmark results at all — an empty report
// would otherwise read as "no regressions".
//
// The diff subcommand gates a fresh report against a blessed baseline:
//
//	benchjson diff -baseline BENCH_baseline.json -current BENCH_scenarios.json \
//	    -summary "$GITHUB_STEP_SUMMARY"
//
// It prints a markdown comparison table (and appends it to -summary when
// set) and exits non-zero when any metric regresses beyond its per-metric
// tolerance: ns/op and "/s" throughput have wide bands (CI timing at
// -benchtime=1x is noisy; the gate catches order-of-magnitude cliffs),
// while allocs/op and B/op are tight (near-deterministic). Benchmarks
// present in the baseline but missing from the current report fail the
// gate; new benchmarks are reported as notes until the next bless.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of test2json's event schema benchjson needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	// Name is the benchmark name including sub-benchmark path, without
	// the -procs suffix.
	Name string `json:"name"`
	// Package is the Go import path the benchmark ran in.
	Package string `json:"package"`
	// Procs is GOMAXPROCS during the run (the -N name suffix; 1 when the
	// name carries none).
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *int64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp *int64 `json:"allocsPerOp,omitempty"`
	// Extra holds custom b.ReportMetric measurements by unit (e.g.
	// "decisions/s"). The testing package prints them between ns/op and
	// the -benchmem columns.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches the fixed prefix of a benchmark result line as
// emitted by the testing package; the metric columns after the
// iteration count are value/unit pairs parsed separately, so custom
// b.ReportMetric units survive, e.g.
//
//	BenchmarkServeThroughput/wire-8   200   57897 ns/op   17324 decisions/s   17252 B/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-(\d+))?\s+(\d+)\s+(\S.*)$`)

// parseLine extracts a Result from one output line, or nil.
func parseLine(pkg, line string) *Result {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return nil
	}
	procs := 1
	if m[2] != "" {
		procs, _ = strconv.Atoi(m[2])
	}
	iters, err := strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return nil
	}
	fields := strings.Fields(m[4])
	if len(fields) < 2 || len(fields)%2 != 0 {
		return nil
	}
	r := &Result{Name: m[1], Package: pkg, Procs: procs, Iterations: iters, NsPerOp: -1}
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	if r.NsPerOp < 0 {
		// Every real result line carries ns/op; without it this was some
		// other "<word> <number> ..." output.
		return nil
	}
	return r
}

// parse consumes a test2json stream and returns the benchmark results
// plus whether any test/benchmark failed. test2json splits output on
// writes, not lines — the testing package emits a result as
// "BenchmarkX \t" followed by "   100\t  12.3 ns/op\n" in separate
// events — so output is reassembled into complete lines per package
// before matching.
func parse(in io.Reader) (results []*Result, failed bool, err error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	partial := map[string]string{} // package -> unterminated output tail
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate interleaved non-JSON noise (e.g. a stray print from
			// a TestMain) rather than losing the whole report.
			continue
		}
		switch ev.Action {
		case "fail":
			failed = true
		case "output":
			buf := partial[ev.Package] + ev.Output
			for {
				nl := strings.IndexByte(buf, '\n')
				if nl < 0 {
					break
				}
				if r := parseLine(ev.Package, buf[:nl]); r != nil {
					results = append(results, r)
				}
				buf = buf[nl+1:]
			}
			partial[ev.Package] = buf
		}
	}
	if err := sc.Err(); err != nil {
		return nil, failed, err
	}
	for pkg, tail := range partial {
		if r := parseLine(pkg, tail); r != nil {
			results = append(results, r)
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	return results, failed, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	results, failed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: stream contains failing tests")
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results in stream")
		os.Exit(1)
	}
}
