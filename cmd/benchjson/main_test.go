package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r := parseLine("figret", "BenchmarkTrainStep/batch=32-8 \t 100\t  12345.6 ns/op\t     128 B/op\t       3 allocs/op")
	if r == nil {
		t.Fatal("full line not parsed")
	}
	if r.Name != "BenchmarkTrainStep/batch=32" || r.Procs != 8 || r.Iterations != 100 ||
		r.NsPerOp != 12345.6 || *r.BytesPerOp != 128 || *r.AllocsPerOp != 3 {
		t.Fatalf("parsed %+v", r)
	}

	r = parseLine("p", "BenchmarkSolve 	 7	 2.5e+08 ns/op")
	if r == nil || r.Procs != 1 || r.NsPerOp != 2.5e8 || r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatalf("no-benchmem line parsed as %+v", r)
	}

	// Custom b.ReportMetric units print between ns/op and the -benchmem
	// columns; they must not eat B/op and allocs/op.
	r = parseLine("serve", "BenchmarkServeThroughput/wire-8 \t 200\t 57897 ns/op\t 17324.5 decisions/s\t 17252 B/op\t 7 allocs/op")
	if r == nil {
		t.Fatal("custom-metric line not parsed")
	}
	if r.Name != "BenchmarkServeThroughput/wire" || r.NsPerOp != 57897 ||
		r.Extra["decisions/s"] != 17324.5 || *r.BytesPerOp != 17252 || *r.AllocsPerOp != 7 {
		t.Fatalf("parsed %+v (extra %v)", r, r.Extra)
	}

	for _, not := range []string{
		"goos: linux",
		"BenchmarkFoo", // name alone (the pre-result echo line)
		"PASS",
		"ok  	figret	1.2s",
	} {
		if r := parseLine("p", not); r != nil {
			t.Errorf("non-result line %q parsed as %+v", not, r)
		}
	}
}

func TestParseStream(t *testing.T) {
	stream := `
{"Action":"start","Package":"figret"}
{"Action":"output","Package":"figret","Output":"goos: linux\n"}
{"Action":"output","Package":"figret","Output":"BenchmarkB-4   200   50.5 ns/op   16 B/op   1 allocs/op\n"}
{"Action":"output","Package":"alpha","Output":"BenchmarkA-4   100   10.0 ns/op\n"}
not even json
{"Action":"pass","Package":"figret"}
`
	results, failed, err := parse(strings.NewReader(stream))
	if err != nil || failed {
		t.Fatalf("parse: failed=%v err=%v", failed, err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	// Sorted by (package, name): alpha before figret.
	if results[0].Package != "alpha" || results[1].Name != "BenchmarkB" {
		t.Fatalf("sort order: %+v", results)
	}

	_, failed, err = parse(strings.NewReader(`{"Action":"fail","Package":"p"}`))
	if err != nil || !failed {
		t.Fatalf("fail action not surfaced: failed=%v err=%v", failed, err)
	}
}

// TestParseSplitEvents reproduces test2json's real framing: one result
// line split across two output events (name+tab, then the numbers), as
// `go test -json -bench` emits it.
func TestParseSplitEvents(t *testing.T) {
	stream := `
{"Action":"output","Package":"p","Output":"BenchmarkSplit \t"}
{"Action":"output","Package":"p","Output":"       1\t    236867 ns/op\t   38720 B/op\t     281 allocs/op\n"}
`
	results, _, err := parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results from split events", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkSplit" || r.Iterations != 1 || r.NsPerOp != 236867 ||
		*r.BytesPerOp != 38720 || *r.AllocsPerOp != 281 {
		t.Fatalf("parsed %+v", r)
	}
}
