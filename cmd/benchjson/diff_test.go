package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func i64(v int64) *int64 { return &v }

func baselineFixture() []*Result {
	return []*Result{
		{Name: "BenchmarkA", Package: "p", Procs: 8, NsPerOp: 1000,
			BytesPerOp: i64(256), AllocsPerOp: i64(4)},
		{Name: "BenchmarkB", Package: "p", Procs: 8, NsPerOp: 5000,
			Extra: map[string]float64{"decisions/s": 200000}},
	}
}

var defaultTol = tolerances{ns: 4, bytes: 1.5, allocs: 1.25, rate: 4}

// A report diffed against itself must gate clean: every row ok, no
// regressions — the baseline always passes its own gate.
func TestDiffSelfClean(t *testing.T) {
	rows, regs := diffResults(baselineFixture(), baselineFixture(), defaultTol)
	if len(regs) != 0 {
		t.Fatalf("self-diff regressed: %v", regs)
	}
	for _, r := range rows {
		if r.status != "ok" {
			t.Fatalf("self-diff row not ok: %+v", r)
		}
	}
}

// Within-band drift (timing 2× on a 4× band, one extra alloc inside
// 1.25× of 4) passes; improvements are labeled, not failed.
func TestDiffWithinTolerance(t *testing.T) {
	cur := baselineFixture()
	cur[0].NsPerOp = 2000       // 2× < 4× band
	cur[0].AllocsPerOp = i64(5) // 1.25× exactly, not beyond
	cur[1].NsPerOp = 900        // > 4× faster: improved
	rows, regs := diffResults(baselineFixture(), cur, defaultTol)
	if len(regs) != 0 {
		t.Fatalf("within-tolerance drift regressed: %v", regs)
	}
	improved := false
	for _, r := range rows {
		if r.bench == "p BenchmarkB-8" && r.metric == "ns/op" {
			improved = r.status == "improved"
		}
	}
	if !improved {
		t.Fatal("large speedup not labeled improved")
	}
}

// Beyond-band regressions fail the gate: a 5× timing cliff, an alloc
// count past its tight band, and a throughput collapse each produce a
// REGRESSION row and a non-empty regression list.
func TestDiffRegressionsFail(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]*Result)
		metric string
	}{
		{"ns", func(c []*Result) { c[0].NsPerOp = 5000 }, "ns/op"},
		{"allocs", func(c []*Result) { c[0].AllocsPerOp = i64(6) }, "allocs/op"},
		{"rate", func(c []*Result) { c[1].Extra["decisions/s"] = 10000 }, "decisions/s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := baselineFixture()
			tc.mutate(cur)
			rows, regs := diffResults(baselineFixture(), cur, defaultTol)
			if len(regs) != 1 {
				t.Fatalf("want 1 regression, got %v", regs)
			}
			found := false
			for _, r := range rows {
				if r.metric == tc.metric && r.status == "REGRESSION" {
					found = true
				}
			}
			if !found {
				t.Fatalf("no REGRESSION row for %s: %+v", tc.metric, rows)
			}
		})
	}
}

// A benchmark that vanishes from the current report is a regression
// (deleting the measurement must not pass the gate); a brand-new one is
// a note, never a failure.
func TestDiffMissingAndNew(t *testing.T) {
	cur := baselineFixture()[:1]
	cur = append(cur, &Result{Name: "BenchmarkC", Package: "p", Procs: 8, NsPerOp: 77})
	rows, regs := diffResults(baselineFixture(), cur, defaultTol)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB") {
		t.Fatalf("missing benchmark not a regression: %v", regs)
	}
	var missing, isNew bool
	for _, r := range rows {
		if r.status == "missing" && strings.Contains(r.bench, "BenchmarkB") {
			missing = true
		}
		if r.status == "new" && strings.Contains(r.bench, "BenchmarkC") {
			isNew = true
		}
	}
	if !missing || !isNew {
		t.Fatalf("missing=%v new=%v in %+v", missing, isNew, rows)
	}
}

// A zero-alloc baseline is a contract: any allocation in the current
// report fails, since 0 × any band is still 0.
func TestDiffZeroAllocContract(t *testing.T) {
	base := []*Result{{Name: "BenchmarkZ", Package: "p", Procs: 1, NsPerOp: 10, AllocsPerOp: i64(0)}}
	cur := []*Result{{Name: "BenchmarkZ", Package: "p", Procs: 1, NsPerOp: 10, AllocsPerOp: i64(1)}}
	if _, regs := diffResults(base, cur, defaultTol); len(regs) != 1 {
		t.Fatalf("0→1 allocs passed the gate: %v", regs)
	}
}

// End-to-end through runDiff: exit codes and the markdown summary file.
func TestRunDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rs []*Result) string {
		p := filepath.Join(dir, name)
		data, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", baselineFixture())
	same := write("same.json", baselineFixture())
	bad := baselineFixture()
	bad[0].NsPerOp = 1e6
	regressed := write("bad.json", bad)
	summary := filepath.Join(dir, "summary.md")

	if code := runDiff([]string{"-baseline", base, "-current", same, "-summary", summary}); code != 0 {
		t.Fatalf("clean diff exited %d", code)
	}
	if code := runDiff([]string{"-baseline", base, "-current", regressed, "-summary", summary}); code == 0 {
		t.Fatal("regressed diff exited 0")
	}
	md, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "| benchmark | metric |") ||
		!strings.Contains(string(md), "REGRESSION") {
		t.Fatalf("summary file missing table or regression marker:\n%s", md)
	}
}
