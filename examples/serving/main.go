// Serving quickstart: run the online TE controller in-process, stream a
// WAN trace through its HTTP API, fail a link mid-stream, hot-swap a
// better checkpoint, and read the serving metrics — the full lifecycle
// of the online subsystem in one self-contained program.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/serve"
	"figret/internal/te"
	"figret/internal/traffic"
)

func main() {
	// 1. Offline stack, unchanged: topology, paths, traffic, one briefly
	// trained bootstrap model and one properly trained replacement.
	// (NewPathSet precomputes on all CPUs; a restarting daemon can skip
	// the solve entirely by passing a te.PathStore via te.NewPathSetOpt —
	// the served CLI exposes that as -pathcache/-pathworkers.)
	g := graph.GEANT()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := traffic.WAN(g.NumVertices(), 160, 42)
	if err != nil {
		log.Fatal(err)
	}
	// Scale utilization into a realistic band: uniform split on the first
	// snapshot ~ 50% on the busiest link.
	if m, _ := ps.MLU(trace.At(0), te.UniformConfig(ps).R); m > 0 {
		trace.Scale(0.5 / m)
	}
	train, test := trace.Split(0.75)
	weak := figret.New(ps, figret.Config{H: 6, Gamma: 1, Hidden: []int{32}, Epochs: 1, Seed: 42, BatchSize: 16})
	if _, err := weak.Train(train); err != nil {
		log.Fatal(err)
	}
	strong := figret.New(ps, figret.Config{H: 6, Gamma: 1, Epochs: 8, Seed: 42, BatchSize: 16})
	if _, err := strong.Train(train); err != nil {
		log.Fatal(err)
	}

	// 2. The serving layer: a registry of hot-swappable checkpoints and a
	// per-topology controller behind the HTTP API.
	reg := serve.NewRegistry()
	if err := reg.AddTopology("geant", ps); err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(reg)
	if _, err := srv.Add("geant", serve.ControllerOptions{HistoryCap: 64}); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, srv.Handler()) //nolint:errcheck // demo server dies with the process
	client := serve.NewClient("http://" + ln.Addr().String())

	if _, err := reg.Install("geant", weak, "bootstrap"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serving GEANT with bootstrap checkpoint v1")

	// 3. Stream the first half of the test trace and close the loop with
	// a 2-interval installation delay (the paper's control-plane latency).
	half := test.Len() / 2
	res, err := serve.Replay(client, "geant", ps, test, serve.ReplayOptions{To: half, Delay: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first half: %d decisions, mean MLU %.3f, peak %.3f (served by versions %v)\n",
		len(res.Decisions), res.MeanMLU, res.PeakMLU, res.Versions)

	// 4. A link fails: the controller reroutes the installed decision
	// immediately, before the next snapshot arrives.
	e := g.Edge(0)
	rr, err := client.ReportFailures("geant", [][2]int{{e.From, e.To}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link (%d,%d) failed: rerouted decision seq %d published\n", e.From, e.To, rr.Seq)
	if _, err := client.ReportFailures("geant", nil); err != nil {
		log.Fatal(err)
	}

	// 5. Hot-swap the properly trained checkpoint over the API — no
	// restart, no dropped requests — and stream the second half.
	data, err := strong.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	ck, err := client.UploadCheckpoint("geant", data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot-swapped checkpoint v%d\n", ck.Version)
	res2, err := serve.Replay(client, "geant", ps, test, serve.ReplayOptions{From: half, Delay: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second half: mean MLU %.3f, peak %.3f (served by versions %v)\n",
		res2.MeanMLU, res2.PeakMLU, res2.Versions)

	// 6. Serving metrics: throughput and decision-latency quantiles.
	ms, err := client.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	m := ms["geant"]
	fmt.Printf("metrics: %d snapshots, %d decisions, p50 %.0fµs, p99 %.0fµs\n",
		m.Snapshots, m.Decisions, m.P50Micros, m.P99Micros)
}
