// Quickstart: build a topology, generate traffic, train FIGRET, and compare
// it against the omniscient oracle on held-out snapshots.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/te"
	"figret/internal/traffic"
)

func main() {
	// 1. Topology: an 8-PoD full-mesh data center fabric.
	g := graph.PoDWEB()
	fmt.Printf("topology: %v\n", g)

	// 2. Candidate paths: Yen's 3 shortest paths per SD pair (the paper's
	// default).
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SD pairs: %d, candidate paths: %d\n", ps.Pairs.Count(), ps.NumPaths())

	// 3. Traffic: a Meta-like PoD trace, split chronologically 75/25.
	trace, err := traffic.DC(traffic.PoDWEB, g.NumVertices(), 200, 42)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.Split(0.75)

	// 4. Train FIGRET: history window H=6, robustness weight gamma=1.
	model := figret.New(ps, figret.Config{H: 6, Gamma: 1, Epochs: 10, Seed: 42})
	stats, err := model.Train(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training MLU: %.4f (epoch 1) -> %.4f (epoch %d)\n",
		stats.EpochMLU[0], stats.EpochMLU[len(stats.EpochMLU)-1], len(stats.EpochMLU))

	// 5. Evaluate on unseen snapshots with the parallel evaluation engine:
	// snapshots are scored concurrently and normalized by the engine's
	// memoized omniscient oracle.
	scheme := &baselines.NNScheme{Label: "FIGRET", Model: model}
	oracle := eval.NewOracle(ps, baselines.AutoSolve(ps), nil)
	run, err := eval.Run([]baselines.Scheme{scheme}, test,
		eval.Window{From: 6, To: test.Len()}, eval.Options{Oracle: oracle})
	if err != nil {
		log.Fatal(err)
	}
	st := run.Scheme("FIGRET").Stats
	fmt.Printf("normalized MLU on %d test snapshots: median %.3f, p75 %.3f, max %.3f\n",
		len(run.Scheme("FIGRET").Norm), st.Median, st.P75, st.Max)
	fmt.Println("(1.0 = the oracle that knows future demands)")
}
