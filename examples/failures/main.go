// Failure handling walkthrough (§4.5, Figure 7): a trained FIGRET model
// reroutes around link failures with no retraining, by proportionally
// redistributing each pair's failed-path ratio over its surviving paths.
//
//	go run ./examples/failures
package main

import (
	"fmt"
	"log"
	"math/rand"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/lp"
	"figret/internal/te"
	"figret/internal/traffic"
)

func main() {
	g := graph.GEANT()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := traffic.WAN(g.NumVertices(), 160, 5)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.Split(0.75)

	model := figret.New(ps, figret.Config{H: 6, Gamma: 1, Epochs: 5, Seed: 5})
	if _, err := model.Train(train); err != nil {
		log.Fatal(err)
	}

	// Walk through one failure event in detail.
	t := 10
	d := test.At(t)
	cfg, err := model.PredictAt(test, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy network: MLU %.4f\n", cfg.MLU(d))

	// Fail a link carrying traffic.
	e := g.Edge(0)
	fs := te.NewFailureSet(g, [][2]int{{e.From, e.To}})
	rerouted := te.Reroute(cfg, fs)
	fmt.Printf("after failing link (%d,%d) and rerouting: MLU %.4f\n",
		e.From, e.To, rerouted.MLU(d))

	// The fault-aware oracle (knows demand AND failure) for reference.
	_, oracle, err := lp.FaultAwareMLUMin(ps, d, fs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-aware oracle:                      MLU %.4f\n", oracle)
	fmt.Printf("FIGRET-with-reroute vs oracle: %.2fx (no retraining needed)\n\n",
		rerouted.MLU(d)/oracle)

	// Sweep 1..3 random failures over several snapshots.
	rng := rand.New(rand.NewSource(9))
	fmt.Printf("%-9s %18s\n", "failures", "avg normalized MLU")
	for nf := 1; nf <= 3; nf++ {
		var sum float64
		var n int
		for trial := 0; trial < 8; trial++ {
			// Resample until the failure set leaves every pair a path.
			fs, ok := sampleSurvivableFailures(ps, rng, nf)
			if !ok {
				continue
			}
			tt := 6 + trial
			dd := test.At(tt)
			c, err := model.PredictAt(test, tt)
			if err != nil {
				log.Fatal(err)
			}
			_, oracle, err := lp.FaultAwareMLUMin(ps, dd, fs, nil)
			if err != nil || oracle <= 0 {
				continue
			}
			sum += te.MLUUnderFailure(c, fs, dd) / oracle
			n++
		}
		if n > 0 {
			fmt.Printf("%-9d %18.3f\n", nf, sum/float64(n))
		}
	}
}

// sampleSurvivableFailures draws nf distinct link failures that leave every
// SD pair at least one surviving candidate path.
func sampleSurvivableFailures(ps *te.PathSet, rng *rand.Rand, nf int) (*te.FailureSet, bool) {
	g := ps.G
	es := g.Edges()
	for attempt := 0; attempt < 100; attempt++ {
		seen := map[[2]int]bool{}
		var links [][2]int
		for len(links) < nf {
			e := es[rng.Intn(len(es))]
			a, b := e.From, e.To
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			links = append(links, [2]int{a, b})
		}
		fs := te.NewFailureSet(g, links)
		ok := true
		for _, pp := range ps.PairPaths {
			alive := false
			for _, p := range pp {
				if !fs.PathDown(ps, p) {
					alive = true
					break
				}
			}
			if !alive {
				ok = false
				break
			}
		}
		if ok {
			return fs, true
		}
	}
	return nil, false
}
