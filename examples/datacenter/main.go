// Data-center scenario: FIGRET versus DOTE on a bursty ToR-level
// direct-connect fabric — the paper's headline result (§5.2): lower average
// MLU and fewer severe congestion events on highly dynamic traffic.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/te"
	"figret/internal/traffic"
)

func main() {
	// A Jellyfish-style random-regular ToR fabric (reduced size for the
	// demo; graph.ToRDB() is the paper-scale 155-node fabric).
	g, err := graph.RandomRegularish(20, 60, 10, 155)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ToR fabric: %d nodes, %d links, %d SD pairs\n",
		g.NumVertices(), g.NumEdges()/2, ps.Pairs.Count())

	trace, err := traffic.DC(traffic.ToRDB, g.NumVertices(), 160, 3)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.Split(0.75)

	// Same architecture, same data — the only difference is gamma.
	fig := figret.New(ps, figret.Config{H: 6, Gamma: 8, Epochs: 8, Seed: 3})
	dote := figret.NewDOTE(ps, figret.Config{H: 6, Epochs: 8, Seed: 3})
	if _, err := fig.Train(train); err != nil {
		log.Fatal(err)
	}
	if _, err := dote.Train(train); err != nil {
		log.Fatal(err)
	}

	type row struct {
		name   string
		model  *figret.Model
		sum    float64
		peak   float64
		severe int
	}
	rows := []*row{{name: "FIGRET", model: fig}, {name: "DOTE", model: dote}}
	n := 0
	for t := 6; t < test.Len(); t++ {
		d := test.At(t)
		for _, r := range rows {
			cfg, err := r.model.PredictAt(test, t)
			if err != nil {
				log.Fatal(err)
			}
			m := cfg.MLU(d)
			r.sum += m
			if m > r.peak {
				r.peak = m
			}
		}
		n++
	}
	// Severe-congestion counting needs a common reference: use DOTE's mean.
	ref := rows[1].sum / float64(n)
	for t := 6; t < test.Len(); t++ {
		d := test.At(t)
		for _, r := range rows {
			cfg, _ := r.model.PredictAt(test, t)
			if cfg.MLU(d) > 2*ref {
				r.severe++
			}
		}
	}
	fmt.Printf("%-8s %10s %10s %14s\n", "scheme", "avg MLU", "peak MLU", "severe events")
	for _, r := range rows {
		fmt.Printf("%-8s %10.3f %10.3f %14d\n", r.name, r.sum/float64(n), r.peak, r.severe)
	}
	fmt.Println("\nFIGRET's burst-aware loss hedges only the bursty SD pairs, cutting")
	fmt.Println("burst-driven congestion without giving up average performance.")

	// Show the fine-grained behavior directly (Figure 8 methodology):
	// average each pair's max path sensitivity over the test snapshots and
	// compare the top-variance decile against the bottom half.
	vars := train.NormalizedVariances()
	k := ps.Pairs.Count()
	figSens := make([]float64, k)
	doteSens := make([]float64, k)
	for t := 6; t < test.Len(); t++ {
		fc, _ := fig.PredictAt(test, t)
		dc, _ := dote.PredictAt(test, t)
		fs := ps.MaxPairSensitivities(fc.R, true)
		ds := ps.MaxPairSensitivities(dc.R, true)
		for i := 0; i < k; i++ {
			figSens[i] += fs[i] / float64(n)
			doteSens[i] += ds[i] / float64(n)
		}
	}
	hi := traffic.Quantile(vars, 0.9)
	lo := traffic.Quantile(vars, 0.5)
	var figBursty, doteBursty, figStable, doteStable, nb, ns float64
	for i, v := range vars {
		switch {
		case v >= hi:
			figBursty += figSens[i]
			doteBursty += doteSens[i]
			nb++
		case v <= lo:
			figStable += figSens[i]
			doteStable += doteSens[i]
			ns++
		}
	}
	if nb > 0 && ns > 0 {
		fmt.Printf("\navg max path sensitivity (top-variance pairs):  FIGRET %.3f vs DOTE %.3f\n",
			figBursty/nb, doteBursty/nb)
		fmt.Printf("avg max path sensitivity (stable pairs):        FIGRET %.3f vs DOTE %.3f\n",
			figStable/ns, doteStable/ns)
		fmt.Println("FIGRET pushes its bursty pairs toward lower sensitivity than DOTE does.")
	}
}
