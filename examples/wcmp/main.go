// WCMP deployment walkthrough: FIGRET's real-valued split ratios must be
// installed into switches as small integer WCMP weight tables (§7: FIGRET
// "only needs switches that support WCMP"). This example trains a model,
// quantizes its output at several table sizes, and shows the MLU cost of
// quantization along with the actual weight tables a switch would program.
//
//	go run ./examples/wcmp
package main

import (
	"fmt"
	"log"

	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/te"
	"figret/internal/traffic"
)

func main() {
	g := graph.PoDWEB()
	ps, err := te.NewPathSet(g, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := traffic.DC(traffic.PoDWEB, g.NumVertices(), 160, 11)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.Split(0.75)
	model := figret.New(ps, figret.Config{H: 6, Gamma: 1, Epochs: 8, Seed: 11})
	if _, err := model.Train(train); err != nil {
		log.Fatal(err)
	}

	t := 10
	d := test.At(t)
	ideal, err := model.PredictAt(test, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal (real-valued) MLU: %.4f\n\n", ideal.MLU(d))

	fmt.Printf("%-12s %10s %14s\n", "table size", "MLU", "max ratio err")
	for _, size := range []int{2, 4, 8, 16, 64} {
		q, err := te.QuantizeWCMP(ideal, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %10.4f %14.4f\n", size, q.MLU(d), te.WCMPError(ideal, q))
	}

	// Show one pair's concrete switch programming at table size 8.
	q8, _ := te.QuantizeWCMP(ideal, 8)
	pair := ps.Pairs.Index(0, 1)
	weights, err := te.WCMPWeights(q8, pair, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nswitch programming for pair 0->1 (table size 8):")
	for i, p := range ps.PairPaths[pair] {
		fmt.Printf("  path %v  ideal %.3f  ->  weight %d/8\n",
			ps.Paths[p], ideal.R[p], weights[i])
	}
	fmt.Println("\nsmall tables already track the ideal MLU closely; 16 entries")
	fmt.Println("per pair suffice for sub-1% quantization error")
}
