// WAN scenario: the paper's Figure 1 / Figure 5(a) story on a GEANT-like
// pan-European network. Mostly stable traffic with rare bursts; compares the
// no-hedging strategy, Jupiter-style hedging, and FIGRET.
//
//	go run ./examples/wan
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"figret/internal/baselines"
	"figret/internal/eval"
	"figret/internal/figret"
	"figret/internal/graph"
	"figret/internal/solver"
	"figret/internal/te"
	"figret/internal/traffic"
)

func main() {
	g := graph.GEANT()

	// Candidate-path precomputation runs on a worker pool (all CPUs here)
	// and persists into an on-disk PathStore: rerunning this example — or
	// pointing the figret/experiments/served CLIs at the same directory
	// via -pathcache — reloads the checksummed cache entry instead of
	// re-running Yen's algorithm over every SD pair. The path set is
	// bitwise identical in all three cases (parallel, sequential, cached).
	store, err := te.NewPathStore(filepath.Join(os.TempDir(), "figret-paths"))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ps, err := te.NewPathSetOpt(g, 3, te.PathSetOptions{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEANT: %d nodes, %d edges, %d SD pairs (paths ready in %v; cache %s)\n",
		g.NumVertices(), g.NumEdges(), ps.Pairs.Count(),
		time.Since(start).Round(time.Millisecond), store.Dir())

	trace, err := traffic.WAN(g.NumVertices(), 220, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.Split(0.75)

	// Burstiness analysis (Figure 4 style): WAN traffic is stable with
	// outliers.
	sims := trace.WindowSimilarities(12)
	st := traffic.Summarize(sims)
	fmt.Printf("window cosine similarity: median %.3f, min %.3f (rare bursts)\n",
		st.Median, st.Min)

	// Train FIGRET with a light robustness weight (WAN is mostly stable).
	model := figret.New(ps, figret.Config{H: 6, Gamma: 0.5, Epochs: 6, Seed: 7})
	if _, err := model.Train(train); err != nil {
		log.Fatal(err)
	}

	// Per-snapshot solvers are the gradient kind to keep the demo fast.
	// The oracle memoizes them and warm-starts consecutive snapshots;
	// PredTE reuses the oracle's cache (its advice for t is the omniscient
	// solve of t-1), and the engine evaluates every (scheme × snapshot)
	// cell in parallel.
	solve := baselines.GradSolve(solver.Options{Iters: 300})
	oracle := eval.NewOracle(ps, solve, baselines.GradWarmSolve(solver.Options{Iters: 120}))
	schemes := []baselines.Scheme{
		&baselines.PredTE{PS: ps, Solve: oracle.CachedSolve}, // "no hedging"
		&baselines.DesTE{PS: ps, Solve: solve},               // Jupiter hedging
		&baselines.NNScheme{Label: "FIGRET", Model: model},
	}
	run, err := eval.Run(schemes, test, eval.Window{From: 6, To: 36}, eval.Options{Oracle: oracle})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %8s %8s %8s\n", "scheme", "median", "p75", "max")
	for _, ss := range run.Schemes {
		fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", ss.Name, ss.Stats.Median, ss.Stats.P75, ss.Stats.Max)
	}
	fmt.Println("expected: no-hedging has the lowest median but the highest peak;")
	fmt.Println("FIGRET holds the median while trimming the burst peak")
}
