#!/usr/bin/env bash
# e2e smoke gate for the served daemon: boot it, watch the ops probes
# transition (healthz live while readyz still reports the warming
# topology), replay a trace over both transports through the real
# sockets, assert non-zero decision counters on the Prometheus scrape,
# and verify SIGTERM drains the process within the budget.
#
# Run from the repository root:  ./test/e2e.sh
set -euo pipefail

API_PORT="${E2E_API_PORT:-18080}"
OPS_PORT="${E2E_OPS_PORT:-19090}"
API="http://127.0.0.1:${API_PORT}"
OPS="http://127.0.0.1:${OPS_PORT}"
TOPO=pod-db
DRAIN_BUDGET_SECS=5

workdir="$(mktemp -d)"
served_pid=""
cleanup() {
  if [[ -n "$served_pid" ]] && kill -0 "$served_pid" 2>/dev/null; then
    kill -9 "$served_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "e2e: FAIL: $*" >&2
  echo "--- served log ---" >&2
  cat "$workdir/served.log" >&2 || true
  exit 1
}

code() { curl -s -o /dev/null -w '%{http_code}' "$1" || true; }

metric() {
  # Prints the value of the first series whose name+labels prefix-match
  # $1 in the buffered scrape at $workdir/metrics.
  awk -v want="$1" 'index($0, want) == 1 { print $2; exit }' "$workdir/metrics"
}

echo "e2e: building served"
go build -o "$workdir/served" ./cmd/served

echo "e2e: booting served ($TOPO, api :$API_PORT, ops :$OPS_PORT)"
"$workdir/served" -topos "$TOPO" -addr "127.0.0.1:$API_PORT" -opsaddr "127.0.0.1:$OPS_PORT" \
  -T 60 -epochs 2 -H 4 -seed 3 -logformat json -draintimeout "${DRAIN_BUDGET_SECS}s" \
  >"$workdir/served.log" 2>&1 &
served_pid=$!

# Liveness must come up while the daemon is still bootstrapping.
for _ in $(seq 1 300); do
  [[ "$(code "$OPS/healthz")" == 200 ]] && break
  kill -0 "$served_pid" 2>/dev/null || fail "served exited during boot"
  sleep 0.1
done
[[ "$(code "$OPS/healthz")" == 200 ]] || fail "healthz never reached 200"
echo "e2e: healthz is live"

# Readiness is defined as every topology having served >=1 real
# decision; before any snapshot is ingested it must be 503 with the
# topology named in the body.
readyz_body="$(curl -s "$OPS/readyz")"
[[ "$(code "$OPS/readyz")" == 503 ]] || fail "readyz was not 503 before the first decision"
grep -q "$TOPO" <<<"$readyz_body" || fail "readyz 503 body does not name the topology: $readyz_body"
echo "e2e: readyz correctly pending: $readyz_body"

# Wait for the bootstrap checkpoint, then replay over both transports.
for _ in $(seq 1 600); do
  [[ "$(curl -s "$API/v1/topologies/$TOPO/routing" | grep -c '"version":[1-9]' || true)" -ge 1 ]] && break
  kill -0 "$served_pid" 2>/dev/null || fail "served exited during bootstrap"
  sleep 0.1
done

echo "e2e: replaying over JSON"
"$workdir/served" -topos "$TOPO" -drive "$API" -drivetransport json -T 60 -seed 3 \
  >"$workdir/drive-json.log" 2>&1 || fail "json replay failed: $(cat "$workdir/drive-json.log")"
echo "e2e: replaying over the wire stream"
"$workdir/served" -topos "$TOPO" -drive "$API" -drivetransport wire -T 60 -seed 3 -driven 500 \
  >"$workdir/drive-wire.log" 2>&1 || fail "wire replay failed: $(cat "$workdir/drive-wire.log")"

[[ "$(code "$OPS/readyz")" == 200 ]] || fail "readyz did not flip to 200 after serving decisions"
echo "e2e: readyz flipped to ready"

curl -s "$OPS/metrics" >"$workdir/metrics"
decisions="$(metric "figret_serve_decisions_total{topology=\"$TOPO\"}")"
json_reqs="$(metric 'figret_serve_transport_requests_total{transport="json"}')"
wire_reqs="$(metric 'figret_serve_transport_requests_total{transport="wire"}')"
[[ -n "$decisions" && "$decisions" != 0 ]] || fail "figret_serve_decisions_total is '${decisions:-missing}'"
[[ -n "$json_reqs" && "$json_reqs" != 0 ]] || fail "json transport counter is '${json_reqs:-missing}'"
[[ -n "$wire_reqs" && "$wire_reqs" != 0 ]] || fail "wire transport counter is '${wire_reqs:-missing}'"
echo "e2e: metrics scrape ok (decisions=$decisions json=$json_reqs wire=$wire_reqs)"

echo "e2e: sending SIGTERM"
kill -TERM "$served_pid"
deadline=$(( $(date +%s) + DRAIN_BUDGET_SECS ))
while kill -0 "$served_pid" 2>/dev/null; do
  [[ "$(date +%s)" -lt "$deadline" ]] || fail "served did not drain within ${DRAIN_BUDGET_SECS}s of SIGTERM"
  sleep 0.1
done
wait "$served_pid" || fail "served exited non-zero after SIGTERM"
grep -q "shutdown complete" "$workdir/served.log" || fail "no graceful-shutdown log record"
served_pid=""

echo "e2e: PASS"
