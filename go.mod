module figret

go 1.24
